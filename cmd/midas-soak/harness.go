package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"midas"
	"midas/internal/faultinject"
	"midas/internal/obs"
	"midas/internal/serve"
	"midas/internal/store"
	"midas/internal/testutil"
)

// config is one soak invocation's knobs, shared by every seed it runs.
type config struct {
	ops      int
	clients  int
	maxFacts int
	breakIt  bool
	restart  bool
	verbose  bool
	pool     []poolRow
}

// report is the per-seed outcome — serialized verbatim as the failure
// artifact, so a violation ships with everything needed to replay it:
// the seed, the fault plan it drew, what was injected, the full op log,
// and the violations themselves.
type report struct {
	Seed        int64            `json:"seed"`
	Plan        faultinject.Plan `json:"plan"`
	FaultCounts map[string]int64 `json:"fault_counts"`
	Requests    int64            `json:"requests"`
	Disconnects int64            `json:"disconnects"`
	Shed        int64            `json:"shed"`
	Restarts    int64            `json:"restarts"`
	Ops         []opRecord       `json:"ops"`
	Violations  []violation      `json:"violations"`
}

type opRecord struct {
	Worker  int    `json:"worker"`
	Seq     int    `json:"seq"`
	Op      string `json:"op"`
	Session string `json:"session,omitempty"`
	Code    int    `json:"code,omitempty"`
	Note    string `json:"note,omitempty"`
}

type violation struct {
	Worker int    `json:"worker"`
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// seedHarness runs one seed: an in-process serve.Server with every
// fault seam wired to one seeded Injector, hammered by cfg.clients
// deterministic workers, then checked against the end-of-run
// invariants (drain behavior, metrics consistency, goroutine leaks).
//
// In -restart mode the server is backed by a durable store and is
// hard-stopped mid-workload: the store freezes as if SIGKILLed, client
// connections are severed, and a fresh server recovers from the same
// data directory and takes over the harness URL. Workers that had a
// request in flight across the window stand their oracles down for
// that session; every other session's oracle keeps asserting — so a
// recovery that loses or mangles any acknowledged mutation fails the
// mirror checks exactly like a serving bug would.
type seedHarness struct {
	cfg  config
	seed int64
	inj  *faultinject.Injector
	reg  *obs.Registry
	hc   *http.Client

	smu     sync.RWMutex // guards srv/ts/st across restarts
	srv     *serve.Server
	ts      *httptest.Server
	st      *store.Store
	dataDir string

	gen        atomic.Int64 // server generation; bumped per restart
	restarting atomic.Bool  // true while the old server is down
	restarts   atomic.Int64

	responses atomic.Int64 // HTTP responses the clients observed
	disconns  atomic.Int64 // requests abandoned client-side
	shed429   atomic.Int64 // 429s the clients observed

	mu    sync.Mutex
	ops   []opRecord
	viols []violation
}

func (h *seedHarness) server() *serve.Server {
	h.smu.RLock()
	defer h.smu.RUnlock()
	return h.srv
}

func (h *seedHarness) base() string {
	h.smu.RLock()
	defer h.smu.RUnlock()
	return h.ts.URL
}

// interrupted reports whether a restart window overlaps an op that
// started at generation g — the op's failure is then expected, not a
// violation.
func (h *seedHarness) interrupted(g int64) bool {
	return h.restarting.Load() || h.gen.Load() != g
}

// startServer builds a server generation: fault seams wired to the
// seed's injector (RestoreOptions re-plants the injected detector on
// recovered sessions — a func cannot be persisted), recovery run when
// a store is configured, and the result published for the workers.
func (h *seedHarness) startServer() *store.Recovery {
	plant := func(o *midas.Options) *midas.Options {
		if o == nil {
			o = &midas.Options{}
		}
		o.Detect = h.inj.Detector()
		return o
	}
	opts := serve.Options{
		Registry:       h.reg,
		MaxInFlight:    h.cfg.clients/2 + 1, // tight enough that shedding happens
		RequestTimeout: 30 * time.Second,
		IDs:            serve.NewIDSource(h.seed*1000 + h.gen.Load()),
		Now:            h.inj.Clock(),
		Store:          h.st,
		RestoreOptions: plant,
		NewSession: func(o *midas.Options) *midas.Session {
			return midas.NewSession(nil, plant(o))
		},
		WrapDiscover: func(next serve.Discover) serve.Discover {
			d := h.inj.Discover(faultinject.DiscoverFunc(next))
			if h.cfg.breakIt {
				d = h.inj.CorruptResults(d)
			}
			return serve.Discover(d)
		},
	}
	srv := serve.New(opts)
	var rec *store.Recovery
	if h.st != nil {
		var err error
		rec, err = srv.Recover(context.Background())
		if err != nil {
			h.violate(-1, -1, "recover", fmt.Sprintf("generation %d: %v", h.gen.Load(), err))
		}
	}
	srv.SetReady(true)
	ts := httptest.NewServer(srv.Handler())
	if rec != nil {
		// Verify against the unpublished URL: once h.ts is swapped the
		// workers resume mutating, and the stamped fingerprints go stale.
		h.verifyRecovery(rec, ts.URL)
	}
	h.smu.Lock()
	h.srv, h.ts = srv, ts
	h.smu.Unlock()
	return rec
}

// verifyRecovery asserts what a recovery must deliver: zero
// quarantines, and every recovered session served back marked
// recovered with the exact fingerprint the recovery stamped.
func (h *seedHarness) verifyRecovery(rec *store.Recovery, base string) {
	for _, q := range rec.Quarantined {
		h.violate(-1, -1, "restart-quarantine", fmt.Sprintf("session %s: %v", q.Name, q.Err))
	}
	for _, rs := range rec.Sessions {
		var info struct {
			Fingerprint string `json:"fingerprint"`
			Recovered   bool   `json:"recovered"`
		}
		code, err := h.doJSONAt(base, h.hc, "GET", "/api/sessions/"+rs.Name, nil, "", &info)
		if err != nil || code != http.StatusOK {
			h.violate(-1, -1, "restart-recovered", fmt.Sprintf("session %s unreachable after recovery: HTTP %d (%v)", rs.Name, code, err))
			continue
		}
		if !info.Recovered {
			h.violate(-1, -1, "restart-recovered", fmt.Sprintf("session %s not marked recovered", rs.Name))
		}
		if want := fmt.Sprintf("%016x", rs.Fingerprint); info.Fingerprint != want {
			h.violate(-1, -1, "restart-fingerprint",
				fmt.Sprintf("session %s serves fingerprint %s, recovery stamped %s", rs.Name, info.Fingerprint, want))
		}
	}
}

// restart is the in-process SIGKILL + reboot: freeze the store (no
// final fsync, in-flight acks fail), sever every client connection,
// tear the old server down, then recover a new generation from the
// same directory and verify what came back — zero quarantines, every
// recovered session marked recovered and answering with the exact
// fingerprint the recovery stamped.
func (h *seedHarness) restart() {
	h.restarting.Store(true)
	h.smu.RLock()
	oldSrv, oldTs, oldSt := h.srv, h.ts, h.st
	h.smu.RUnlock()

	oldSt.Kill()
	oldTs.CloseClientConnections()
	oldSrv.Close() // cancels async job contexts
	oldTs.Close()  // waits out the severed handlers

	st, err := store.Open(store.Options{Dir: h.dataDir, Fsync: store.PolicyBatch, Registry: h.reg})
	if err != nil {
		h.violate(-1, -1, "restart-open", err.Error())
		h.restarting.Store(false)
		return
	}
	h.smu.Lock()
	h.st = st
	h.smu.Unlock()
	rec := h.startServer()
	h.gen.Add(1)
	h.restarting.Store(false)
	h.restarts.Add(1)
	n := 0
	if rec != nil {
		n = len(rec.Sessions)
	}
	h.record(-1, -1, "restart", "", 0, fmt.Sprintf("gen %d: recovered %d session(s)", h.gen.Load(), n))
}

func runSeed(cfg config, seed int64) *report {
	if cfg.clients <= 0 {
		cfg.clients = 4
	}
	before := testutil.Goroutines()
	h := &seedHarness{
		cfg: cfg, seed: seed,
		inj: faultinject.New(seed, faultinject.DefaultPlan()),
		reg: obs.New(),
		hc:  &http.Client{Timeout: 60 * time.Second},
	}
	if cfg.restart {
		dir, err := os.MkdirTemp("", "midas-soak-*")
		if err != nil {
			h.violate(-1, -1, "setup", fmt.Sprintf("data dir: %v", err))
			return h.report()
		}
		defer os.RemoveAll(dir)
		h.dataDir = dir
		st, err := store.Open(store.Options{Dir: dir, Fsync: store.PolicyBatch, Registry: h.reg})
		if err != nil {
			h.violate(-1, -1, "setup", fmt.Sprintf("opening store: %v", err))
			return h.report()
		}
		h.st = st
	}
	h.startServer()

	// A sentinel session no worker touches: never discovered before the
	// drain, so its result cache is empty and checkDrain's probe must
	// reach the drain gate rather than a cache hit or a 404.
	if code, err := h.doJSON(h.hc, "POST", "/api/sessions",
		strings.NewReader(`{"name":"drain-probe"}`), "application/json", nil); err != nil || code != http.StatusCreated {
		h.violate(-1, -1, "setup", fmt.Sprintf("creating drain-probe session: HTTP %d (%v)", code, err))
	}

	// The restarter waits for roughly half the workload to land, then
	// hard-stops and reboots the server under the workers.
	restartDone := make(chan struct{})
	if cfg.restart {
		go func() {
			defer close(restartDone)
			target := int64(cfg.ops) / 2
			deadline := time.Now().Add(60 * time.Second)
			for h.responses.Load() < target && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			h.restart()
		}()
	} else {
		close(restartDone)
	}

	perWorker := cfg.ops / cfg.clients
	if perWorker <= 0 {
		perWorker = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWorker(h, id)
			for seq := 0; seq < perWorker; seq++ {
				w.step(seq)
			}
			w.finalChecks()
		}(i)
	}
	wg.Wait()
	<-restartDone

	h.checkDrain()
	h.checkMetrics()

	h.smu.RLock()
	ts, srv, st := h.ts, h.srv, h.st
	h.smu.RUnlock()
	ts.Close()
	srv.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			h.violate(-1, -1, "store-close", err.Error())
		}
	}
	h.hc.CloseIdleConnections()
	if leaks := testutil.Leaked(before, 5*time.Second); len(leaks) > 0 {
		h.violate(-1, -1, "goroutine-leak", fmt.Sprintf("%v", leaks))
	}
	return h.report()
}

func (h *seedHarness) report() *report {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &report{
		Seed:        h.seed,
		Plan:        h.inj.Plan(),
		FaultCounts: h.inj.Counts(),
		Requests:    h.responses.Load(),
		Disconnects: h.disconns.Load(),
		Shed:        h.shed429.Load(),
		Restarts:    h.restarts.Load(),
		Ops:         h.ops,
		Violations:  h.viols,
	}
}

func (h *seedHarness) record(worker, seq int, op, session string, code int, note string) {
	if h.cfg.verbose {
		fmt.Printf("seed %d w%d #%d %-14s %-12s %d %s\n", h.seed, worker, seq, op, session, code, note)
	}
	h.mu.Lock()
	h.ops = append(h.ops, opRecord{Worker: worker, Seq: seq, Op: op, Session: session, Code: code, Note: note})
	h.mu.Unlock()
}

func (h *seedHarness) violate(worker, seq int, kind, detail string) {
	h.mu.Lock()
	h.viols = append(h.viols, violation{Worker: worker, Seq: seq, Kind: kind, Detail: detail})
	h.mu.Unlock()
}

// doJSON issues one request against the harness server, decoding the
// JSON response into out when non-nil. A transport-level failure
// returns code 0 with the error; response bodies that fail to decode
// are reported as a harness violation (the API must always answer
// well-formed JSON).
func (h *seedHarness) doJSON(client *http.Client, method, path string, body io.Reader, contentType string, out any) (int, error) {
	return h.doJSONAt(h.base(), client, method, path, body, contentType, out)
}

// doJSONAt is doJSON against an explicit base URL — how verifyRecovery
// reaches a server generation before it is published to the workers.
func (h *seedHarness) doJSONAt(base string, client *http.Client, method, path string, body io.Reader, contentType string, out any) (int, error) {
	req, err := http.NewRequest(method, base+path, body)
	if err != nil {
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		h.disconns.Add(1)
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.disconns.Add(1)
		return 0, err
	}
	h.responses.Add(1)
	if resp.StatusCode == http.StatusTooManyRequests {
		h.shed429.Add(1)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			h.violate(-1, -1, "malformed-response", fmt.Sprintf("%s %s: %v in %.200q", method, path, err, raw))
		}
	}
	return resp.StatusCode, nil
}

// checkDrain verifies shutdown semantics: Drain leaves no job running,
// and a draining server refuses discovery with 503 while /healthz stays
// alive.
func (h *seedHarness) checkDrain() {
	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	h.server().Drain(ctx)

	var errResp struct {
		Error string `json:"error"`
	}
	code, err := h.doJSON(h.hc, "POST", "/api/sessions/drain-probe/discover", nil, "", &errResp)
	if err == nil && code != http.StatusServiceUnavailable {
		h.violate(-1, -1, "drain-503", fmt.Sprintf("discover during drain: HTTP %d, want 503", code))
	}
	if code, err := h.doJSON(h.hc, "GET", "/healthz", nil, "", nil); err != nil || code != http.StatusOK {
		h.violate(-1, -1, "drain-healthz", fmt.Sprintf("healthz during drain: HTTP %d (%v)", code, err))
	}

	var jobs struct {
		Jobs []struct {
			Job    string `json:"job"`
			Status string `json:"status"`
			Cached bool   `json:"cached"`
		} `json:"jobs"`
	}
	if code, err := h.doJSON(h.hc, "GET", "/api/jobs", nil, "", &jobs); err != nil || code != http.StatusOK {
		h.violate(-1, -1, "drain-jobs", fmt.Sprintf("job list after drain: HTTP %d (%v)", code, err))
		return
	}
	ran, cached := int64(0), int64(0)
	for _, j := range jobs.Jobs {
		if j.Status == serve.StateRunning {
			h.violate(-1, -1, "drain-left-running", fmt.Sprintf("job %s still running after Drain", j.Job))
		}
		if j.Cached {
			cached++
		} else {
			ran++
		}
	}
	// The authoritative job list must reconcile exactly with the
	// serve/* counters: every non-cached job was executed and finished,
	// every cached one hit the result cache. After a restart the shared
	// counters span every generation while /api/jobs only lists the
	// current one, so the exact reconciliation only holds restart-free.
	if h.restarts.Load() == 0 {
		h.reconcile("jobs/finished", ran, func() int64 { return h.reg.Counter("serve/jobs/finished").Value() })
		h.reconcile("cache/hit", cached, func() int64 { return h.reg.Counter("serve/cache/hit").Value() })
	}
}

// reconcile retries an exact counter comparison briefly: a handler that
// already answered its client may still be a few instructions away from
// bumping its counters.
func (h *seedHarness) reconcile(name string, want int64, got func() int64) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got() == want || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := got(); g != want {
		h.violate(-1, -1, "metrics-"+name, fmt.Sprintf("serve/%s = %d, observed %d", name, g, want))
	}
}

// checkMetrics bounds the request counters against what the clients
// observed: the server counts every handler completion, so its total
// must cover every client-observed response and exceed it by at most
// the number of abandoned requests.
func (h *seedHarness) checkMetrics() {
	observed := h.responses.Load()
	dropped := h.disconns.Load()
	total := func() int64 {
		var n int64
		for _, s := range h.reg.Snapshot().CounterVecs["serve/requests"].Series {
			n += s.Value
		}
		return n
	}
	deadline := time.Now().Add(2 * time.Second)
	for total() < observed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := total(); got < observed || got > observed+dropped {
		h.violate(-1, -1, "metrics-requests",
			fmt.Sprintf("serve/requests total %d outside [%d, %d] (observed, +%d disconnects)",
				got, observed, observed+dropped, dropped))
	}
	shed := h.reg.Counter("serve/shed").Value()
	if seen := h.shed429.Load(); shed < seen || shed > seen+dropped {
		h.violate(-1, -1, "metrics-shed",
			fmt.Sprintf("serve/shed = %d outside [%d, %d]", shed, seen, seen+dropped))
	}
	if running := h.reg.Gauge("serve/jobs/running").Value(); running != 0 {
		h.violate(-1, -1, "metrics-running", fmt.Sprintf("serve/jobs/running = %v after drain", running))
	}
}

// digest condenses a result's slices into a comparable fingerprint.
func digest(slices []normSlice) string {
	b, _ := json.Marshal(slices)
	sum := fnv.New64a()
	sum.Write(b)
	return fmt.Sprintf("%016x", sum.Sum64())
}

func sameSlices(a, b []normSlice) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return bytes.Equal(ab, bb)
}
