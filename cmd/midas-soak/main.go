// Command midas-soak runs a randomized concurrent workload against an
// in-process serve.Server with every fault seam wired to a seeded
// injector, and checks the serving path's invariants continuously:
// cache hits only on equal fingerprints, incremental results identical
// to a from-scratch oracle rerun, serve/* metrics consistent with the
// responses the clients saw, no goroutine leaks after drain, and
// partial-only results when an injected deadline lands. With -restart
// the server runs on a durable store and is hard-stopped and recovered
// mid-workload: every acknowledged mutation must survive into the new
// generation, verified by the same mirror oracles across the boundary.
//
// Every run is replayable: the workload and the fault plan both derive
// from -seed, so a failing seed re-runs to the same workload against
// the same fault distribution. On violations the full report — plan,
// fault counts, op log, violations — is written to
// <oplog>/SOAK_failure_seed<N>.json and the exit status is 1.
//
// Usage:
//
//	midas-soak -seeds 5 -ops 300                # seeds 1..5, ~300 ops each
//	midas-soak -seed 7 -ops 300 -v              # replay seed 7, op-by-op
//	midas-soak -facts data/facts.tsv            # draw facts from a corpus
//	midas-soak -restart                         # kill + recover the server mid-workload
//	midas-soak -break                           # prove the oracle bites
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// poolRow is one fact the workers draw batches from.
type poolRow struct {
	subject, predicate, object string
	confidence                 float64
	url                        string
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func main() {
	var (
		seed     = flag.Int64("seed", 0, "run exactly this seed (0 = run -seeds sequential seeds)")
		seeds    = flag.Int("seeds", 3, "number of seeds to run, starting at 1")
		ops      = flag.Int("ops", 200, "approximate operations per seed, split across clients")
		clients  = flag.Int("clients", 4, "concurrent workers per seed")
		facts    = flag.String("facts", "", "facts TSV to draw from (subject\\tpredicate\\tobject[\\tconf[\\turl]]); default synthetic")
		maxFacts = flag.Int("max-facts", 400, "cap on fact rows ingested per session")
		oplog    = flag.String("oplog", ".", "directory for failure artifacts")
		restart  = flag.Bool("restart", false, "run on a durable store and hard-kill + recover the server mid-workload")
		breakIt  = flag.Bool("break", false, "inject a deliberate invariant break (the harness must catch it)")
		verbose  = flag.Bool("v", false, "log every operation")
	)
	flag.Parse()

	pool, err := loadPool(*facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "midas-soak: %v\n", err)
		os.Exit(2)
	}
	cfg := config{
		ops: *ops, clients: *clients, maxFacts: *maxFacts,
		breakIt: *breakIt, restart: *restart, verbose: *verbose, pool: pool,
	}

	var run []int64
	if *seed != 0 {
		run = []int64{*seed}
	} else {
		for s := 1; s <= *seeds; s++ {
			run = append(run, int64(s))
		}
	}

	failed := 0
	for _, s := range run {
		start := time.Now()
		r := runSeed(cfg, s)
		status := "ok"
		if len(r.Violations) > 0 {
			status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
			failed++
		}
		fmt.Printf("seed %d: %s — %d ops, %d responses, %d shed, %d disconnects, %d restarts, faults %v in %v\n",
			s, status, len(r.Ops), r.Requests, r.Shed, r.Disconnects, r.Restarts, r.FaultCounts, time.Since(start).Round(time.Millisecond))
		if len(r.Violations) > 0 {
			for i, v := range r.Violations {
				if i == 10 {
					fmt.Printf("  … %d more\n", len(r.Violations)-i)
					break
				}
				fmt.Printf("  [%s] w%d#%d: %s\n", v.Kind, v.Worker, v.Seq, v.Detail)
			}
			if path, err := writeArtifact(*oplog, r); err != nil {
				fmt.Fprintf(os.Stderr, "midas-soak: writing artifact: %v\n", err)
			} else {
				fmt.Printf("  artifact: %s\n  replay:   midas-soak -seed %d -ops %d -clients %d%s%s\n",
					path, s, *ops, *clients, restartFlag(*restart), breakFlag(*breakIt))
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func breakFlag(b bool) string {
	if b {
		return " -break"
	}
	return ""
}

func restartFlag(b bool) string {
	if b {
		return " -restart"
	}
	return ""
}

func writeArtifact(dir string, r *report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("SOAK_failure_seed%d.json", r.Seed))
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, b, 0o644)
}

// loadPool reads a facts TSV, or synthesizes a corpus shaped like the
// generator's slim datasets: a handful of verticals, each a web source
// with per-entity pages, two predicates per entity.
func loadPool(path string) ([]poolRow, error) {
	if path == "" {
		return syntheticPool(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pool []poolRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 3 {
			continue
		}
		row := poolRow{subject: cols[0], predicate: cols[1], object: cols[2], confidence: 0.9}
		if len(cols) > 3 {
			if c, err := strconv.ParseFloat(cols[3], 64); err == nil && c > 0 && c <= 1 {
				row.confidence = c
			}
		}
		if len(cols) > 4 {
			row.url = cols[4]
		}
		if row.url == "" {
			row.url = "http://pool.soak.example.com/wiki/p.htm"
		}
		pool = append(pool, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("no usable rows in %s", path)
	}
	return pool, nil
}

// syntheticPool builds a corpus the pipeline can actually slice: per
// vertical, every entity shares kind=<vertical> (the property that
// defines a profitable slice over the vertical's web source) and
// carries one unique id fact, each on its own page of the vertical's
// sub-domain.
func syntheticPool() []poolRow {
	verticals := []string{"movies", "books", "songs", "people", "places", "teams"}
	var pool []poolRow
	for _, v := range verticals {
		for i := 0; i < 50; i++ {
			subj := fmt.Sprintf("%s entity %d", v, i)
			url := fmt.Sprintf("http://%s.soak.example.com/wiki/e%d.htm", v, i)
			conf := 0.5 + float64(i%5)*0.1
			pool = append(pool,
				poolRow{subject: subj, predicate: "kind", object: v, confidence: conf, url: url},
				poolRow{subject: subj, predicate: "id", object: fmt.Sprintf("id-%s-%d", v, i), confidence: conf, url: url},
			)
		}
	}
	return pool
}
