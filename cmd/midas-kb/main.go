// Command midas-kb is a knowledge-base utility: convert between the
// supported persistence formats, print statistics, diff two KBs, and
// merge several into one.
//
// Formats are chosen by file extension: .tsv (tab-separated), .bin
// (compact binary), .nt/.nq (W3C N-Triples).
//
// Usage:
//
//	midas-kb convert -in kb.tsv -out kb.bin
//	midas-kb stats   -in kb.nt
//	midas-kb diff    -a old.tsv -b new.tsv
//	midas-kb merge   -out all.bin base.tsv extra.nt more.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/rdf"
)

// logFlags registers the -log-level/-log-format flags every midas
// binary accepts on one subcommand's flag set; the returned func
// installs the logger and must run right after fs.Parse.
func logFlags(fs *flag.FlagSet) (install func()) {
	level := fs.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
	format := fs.String("log-format", "logfmt", "log encoding: logfmt|json")
	return func() { check(obs.InstallDefaultLogger(os.Stderr, *level, *format)) }
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ExitOnError)
		installLog := logFlags(fs)
		in := fs.String("in", "", "input KB file (required)")
		out := fs.String("out", "", "output KB file (required)")
		fs.Parse(os.Args[2:])
		installLog()
		if *in == "" || *out == "" {
			fs.Usage()
			os.Exit(2)
		}
		k := kb.New(nil)
		n, err := loadInto(k, *in)
		check(err)
		check(saveAs(k, *out))
		fmt.Printf("converted %d facts: %s → %s\n", n, *in, *out)

	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		installLog := logFlags(fs)
		in := fs.String("in", "", "input KB file (required)")
		top := fs.Int("top", 10, "show the most frequent predicates")
		fs.Parse(os.Args[2:])
		installLog()
		if *in == "" {
			fs.Usage()
			os.Exit(2)
		}
		k := kb.New(nil)
		_, err := loadInto(k, *in)
		check(err)
		printStats(k, *top)

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		installLog := logFlags(fs)
		a := fs.String("a", "", "first KB (required)")
		b := fs.String("b", "", "second KB (required)")
		show := fs.Int("show", 5, "sample size of differing facts to print")
		fs.Parse(os.Args[2:])
		installLog()
		if *a == "" || *b == "" {
			fs.Usage()
			os.Exit(2)
		}
		check(diff(*a, *b, *show))

	case "merge":
		fs := flag.NewFlagSet("merge", flag.ExitOnError)
		installLog := logFlags(fs)
		out := fs.String("out", "", "output KB file (required)")
		fs.Parse(os.Args[2:])
		installLog()
		if *out == "" || fs.NArg() == 0 {
			fs.Usage()
			os.Exit(2)
		}
		k := kb.New(nil)
		total := 0
		for _, in := range fs.Args() {
			n, err := loadInto(k, in)
			check(err)
			fmt.Printf("  %s: %d new facts\n", in, n)
			total += n
		}
		check(saveAs(k, *out))
		fmt.Printf("merged %d facts from %d files into %s\n", k.Size(), fs.NArg(), *out)
		_ = total

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: midas-kb {convert|stats|diff|merge} [flags]  (see -h per subcommand)")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "midas-kb:", err)
		os.Exit(1)
	}
}

// loadInto reads a KB file in the format implied by its extension.
func loadInto(k *kb.KB, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		return k.ReadBinary(f)
	case strings.HasSuffix(path, ".nt"), strings.HasSuffix(path, ".nq"):
		return rdf.LoadKB(f, k)
	default:
		return k.ReadTSV(f)
	}
}

// saveAs writes a KB file in the format implied by its extension.
func saveAs(k *kb.KB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch {
	case strings.HasSuffix(path, ".bin"):
		werr = k.WriteBinary(f)
	case strings.HasSuffix(path, ".nt"), strings.HasSuffix(path, ".nq"):
		werr = rdf.SaveKB(f, k)
	default:
		werr = k.WriteTSV(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func printStats(k *kb.KB, top int) {
	fmt.Printf("facts:      %d\n", k.Size())
	fmt.Printf("subjects:   %d\n", k.NumSubjects())
	fmt.Printf("predicates: %d\n", k.NumPredicates())
	type pc struct {
		name  string
		count int
	}
	preds := make([]pc, 0, k.NumPredicates())
	for _, p := range k.Predicates() {
		preds = append(preds, pc{k.Space().Predicates.String(p), k.PredicateCount(p)})
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].count != preds[j].count {
			return preds[i].count > preds[j].count
		}
		return preds[i].name < preds[j].name
	})
	if top > len(preds) {
		top = len(preds)
	}
	fmt.Printf("top predicates:\n")
	for _, p := range preds[:top] {
		fmt.Printf("  %8d  %s\n", p.count, p.name)
	}
}

func diff(pathA, pathB string, show int) error {
	// Share one space so triples compare by ID.
	space := kb.NewSpace()
	a, b := kb.New(space), kb.New(space)
	if _, err := loadInto(a, pathA); err != nil {
		return err
	}
	if _, err := loadInto(b, pathB); err != nil {
		return err
	}
	onlyA, onlyB, common := 0, 0, 0
	var sampleA, sampleB []string
	for _, t := range a.Triples() {
		if b.Contains(t) {
			common++
		} else {
			onlyA++
			if len(sampleA) < show {
				s, p, o := space.StringTriple(t)
				sampleA = append(sampleA, fmt.Sprintf("%s | %s | %s", s, p, o))
			}
		}
	}
	for _, t := range b.Triples() {
		if !a.Contains(t) {
			onlyB++
			if len(sampleB) < show {
				s, p, o := space.StringTriple(t)
				sampleB = append(sampleB, fmt.Sprintf("%s | %s | %s", s, p, o))
			}
		}
	}
	fmt.Printf("common: %d\nonly in %s: %d\nonly in %s: %d\n", common, pathA, onlyA, pathB, onlyB)
	for _, s := range sampleA {
		fmt.Printf("  - %s\n", s)
	}
	for _, s := range sampleB {
		fmt.Printf("  + %s\n", s)
	}
	return nil
}
