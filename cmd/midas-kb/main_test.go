package main

import (
	"os"
	"path/filepath"
	"testing"

	"midas/internal/kb"
)

func sampleKB() *kb.KB {
	k := kb.New(nil)
	k.AddStrings("Atlas", "category", "rocket_family")
	k.AddStrings("Atlas", "sponsor", "NASA")
	k.AddStrings("Castor-4", "category", "rocket_family")
	return k
}

// TestLoadSaveAllFormats: every extension round-trips through loadInto
// and saveAs, including cross-format conversion chains.
func TestLoadSaveAllFormats(t *testing.T) {
	dir := t.TempDir()
	src := sampleKB()

	// tsv → bin → nt → tsv chain.
	paths := []string{
		filepath.Join(dir, "a.tsv"),
		filepath.Join(dir, "b.bin"),
		filepath.Join(dir, "c.nt"),
		filepath.Join(dir, "d.tsv"),
	}
	if err := saveAs(src, paths[0]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(paths); i++ {
		k := kb.New(nil)
		n, err := loadInto(k, paths[i-1])
		if err != nil || n != 3 {
			t.Fatalf("load %s: n=%d err=%v", paths[i-1], n, err)
		}
		if err := saveAs(k, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	final := kb.New(nil)
	if _, err := loadInto(final, paths[len(paths)-1]); err != nil {
		t.Fatal(err)
	}
	if final.Size() != 3 || !final.ContainsStrings("Atlas", "sponsor", "NASA") {
		t.Error("conversion chain lost facts")
	}
}

func TestLoadIntoMissingFile(t *testing.T) {
	if _, err := loadInto(kb.New(nil), filepath.Join(t.TempDir(), "nope.tsv")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestSaveAsBadPath(t *testing.T) {
	if err := saveAs(sampleKB(), filepath.Join(t.TempDir(), "no-such-dir", "x.tsv")); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestDiffOutput(t *testing.T) {
	dir := t.TempDir()
	a, b := sampleKB(), sampleKB()
	b.AddStrings("Castor-4", "started", "1971")
	pa, pb := filepath.Join(dir, "a.tsv"), filepath.Join(dir, "b.tsv")
	if err := saveAs(a, pa); err != nil {
		t.Fatal(err)
	}
	if err := saveAs(b, pb); err != nil {
		t.Fatal(err)
	}
	if err := diff(pa, pb, 5); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDoesNotPanic(t *testing.T) {
	printStats(sampleKB(), 10)
	printStats(kb.New(nil), 3)
	_ = os.Stdout // stats write to stdout; reaching here is the assertion
}
