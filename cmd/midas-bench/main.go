// Command midas-bench regenerates the paper's tables and figures
// (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	midas-bench -exp fig11            # one experiment
//	midas-bench -exp all              # everything (minutes)
//	midas-bench -exp fig3 -stats bench-stats.json
//
// Experiments: fig3, fig7, fig8, fig9, fig9-nell, fig10-reverb,
// fig10-nell, fig11, annotation, scaling, costmodel, ablation-pruning,
// ablation-flat, ablation-parallel, ablation-combo,
// ablation-traversal, all.
//
// -stats writes a JSON snapshot of the pipeline's observability
// registry (per-phase timings, hierarchy pruning counters, worker
// utilization) collected as a side effect of the run; CI uploads it as
// the perf-trajectory artifact. -listen serves the registry live while
// the experiments run — /metrics as OpenMetrics text, /debug/vars as
// expvar JSON, /debug/pprof — so a scraper polls the run instead of
// waiting for the exit snapshot. -trace writes a Chrome trace-event
// JSON of every pipeline span (load in Perfetto); -trace-sample N keeps
// only every Nth root span (with its children), bounding the trace on
// -exp all runs. -pprof serves net/http/pprof alone, kept for
// compatibility (-listen includes it). -hier-workers pins the
// within-source lattice-build worker count process-wide (results are
// bit-identical for every value; only wall time changes).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"midas/internal/experiments"
	"midas/internal/hierarchy"
	"midas/internal/obs"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (see doc comment)")
		seed        = flag.Int64("seed", 7, "generator seed")
		scale       = flag.Float64("scale", 0.5, "corpus scale for fig10")
		statsPath   = flag.String("stats", "", "write a JSON metrics snapshot of the run to this file")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		listen      = flag.String("listen", "", "serve live telemetry (/metrics, /debug/vars, /debug/pprof) on this address (e.g. localhost:9090)")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON of the run's spans to this file (load in Perfetto)")
		traceSample = flag.Int("trace-sample", 1, "with -trace, record every Nth root span (1 = all)")
		hierWorkers = flag.Int("hier-workers", 0, "within-source lattice-build workers (0 = GOMAXPROCS, 1 = sequential; output is identical)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off (off for quiet benchmark runs)")
		logFormat   = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "midas-bench:", err)
		os.Exit(1)
	}
	if *hierWorkers != 0 {
		hierarchy.SetDefaultWorkers(*hierWorkers)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "midas-bench: pprof:", err)
			}
		}()
	}
	if *listen != "" {
		addr, err := obs.ListenAndServe(*listen, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "midas-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving live telemetry on http://%s/metrics\n", addr)
	}
	if *tracePath != "" {
		// The experiments call the framework without explicit options;
		// the default tracer is the fallback they report spans into.
		tr := obs.NewTracer()
		tr.SetRootSampling(*traceSample)
		obs.SetDefaultTracer(tr)
	}

	run := map[string]func(){
		"fig3": func() { fig3(*seed) },
		"fig7": func() { fig7(*scale, *seed) },
		"fig8": func() { fig8(*seed) },
		"fig9": func() { fig9("reverb-slim", *seed) },
		"fig9-nell": func() {
			fig9("nell-slim", *seed)
		},
		"fig10-reverb": func() { fig10("reverb", *scale, *seed) },
		"fig10-nell":   func() { fig10("nell", *scale, *seed) },
		"fig11":        func() { fig11(*seed) },
		"ablation-pruning": func() {
			experiments.RenderAblation(os.Stdout, "Ablation: MIDASalg pruning strategies (dense source, 400 entities):",
				experiments.AblationPruning(400, *seed))
		},
		"ablation-flat": func() {
			experiments.RenderAblation(os.Stdout, "Ablation: flat per-granularity sweep vs. hierarchical framework (ReVerb-Slim):",
				experiments.AblationFlatVsHierarchical(*seed, 0))
		},
		"ablation-parallel": func() {
			experiments.RenderAblation(os.Stdout, "Ablation: framework worker count (ReVerb-Slim):",
				experiments.AblationParallelism(*seed, []int{1, 2, 4, 8}))
		},
		"costmodel": func() {
			experiments.RenderCostSensitivity(os.Stdout, experiments.CostSensitivity(*seed, 0))
		},
		"annotation": func() {
			experiments.RenderAnnotation(os.Stdout, experiments.Annotation(*seed, 20, 20, 0))
		},
		"scaling": func() {
			experiments.RenderScaling(os.Stdout, experiments.Scaling([]float64{0.25, 0.5, 1.0, 2.0}, *seed, 0))
		},
		"ablation-traversal": func() {
			experiments.RenderAblation(os.Stdout, "Ablation: within-level traversal order (40 random dense sources):",
				experiments.AblationTraversalOrder(40, *seed))
		},
		"ablation-combo": func() {
			experiments.RenderAblation(os.Stdout, "Ablation: initial-slice combination cap (multi-valued source):",
				experiments.AblationComboCap(*seed, []int{1, 4, 16, 64, 256}))
		},
	}

	order := []string{
		"fig3", "fig7", "fig8", "fig9", "fig9-nell", "fig10-reverb",
		"fig10-nell", "fig11", "annotation", "scaling", "costmodel", "ablation-pruning",
		"ablation-flat", "ablation-parallel", "ablation-combo", "ablation-traversal",
	}
	if *exp == "all" {
		for _, id := range order {
			banner(id)
			run[id]()
		}
	} else {
		fn, ok := run[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "midas-bench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		banner(*exp)
		fn()
	}
	if *statsPath != "" {
		if err := obs.Default().WriteFile(*statsPath); err != nil {
			fmt.Fprintln(os.Stderr, "midas-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *statsPath)
	}
	if *tracePath != "" {
		if err := obs.DefaultTracer().WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "midas-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace (%d spans) to %s\n", obs.DefaultTracer().Len(), *tracePath)
	}
}

func banner(id string) {
	fmt.Printf("\n================ %s ================\n", id)
}

func fig3(seed int64) {
	start := time.Now()
	rows := experiments.Fig3(seed, 6, 0)
	experiments.RenderFig3(os.Stdout, rows)
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
}

func fig7(scale float64, seed int64) {
	experiments.RenderFig7(os.Stdout, experiments.Fig7(scale, seed))
}

func fig8(seed int64) {
	experiments.RenderFig8(os.Stdout, experiments.Fig8("reverb-slim", 5, seed))
}

func fig9(dataset string, seed int64) {
	start := time.Now()
	cfg := experiments.DefaultFig9Config()
	cfg.Dataset = dataset
	cfg.Seed = seed
	res := experiments.Fig9(cfg)
	experiments.RenderFig9(os.Stdout, res)
	for _, cov := range []float64{0, 0.4, 0.8} {
		experiments.RenderFig9Curves(os.Stdout, res, cov)
		fmt.Println()
	}
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
}

func fig10(dataset string, scale float64, seed int64) {
	start := time.Now()
	cfg := experiments.DefaultFig10Config(dataset)
	cfg.Scale = scale
	cfg.Seed = seed
	res := experiments.Fig10(cfg)
	experiments.RenderFig10(os.Stdout, res)
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
}

func fig11(seed int64) {
	start := time.Now()
	cfg := experiments.DefaultFig11Config()
	cfg.Seed = seed
	res := experiments.Fig11(cfg)
	experiments.RenderFig11(os.Stdout, res)
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
}
