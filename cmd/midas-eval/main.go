// Command midas-eval scores a discovery run against a silver standard.
//
// It reconstructs each predicted slice's fact set from the extraction
// corpus (all facts of the slice's entities under its source) and each
// silver slice's fact set from the silver-facts file, then reports
// precision, recall, and F-measure under the paper's evaluation rule:
// a predicted slice matches a silver slice when their fact-set Jaccard
// similarity exceeds 0.95, one-to-one.
//
// Usage:
//
//	midas-datagen -dataset reverb-slim -out data
//	midas -facts data/facts.tsv -kb data/kb.tsv -json > pred.json
//	midas-eval -pred pred.json -facts data/facts.tsv -silver data/silver-facts.tsv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"midas/internal/eval"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/source"
)

// prediction mirrors the JSON emitted by `midas -json`.
type prediction struct {
	Slices []struct {
		Source   string
		Entities []string
		Profit   float64
	}
}

func main() {
	var (
		predPath   = flag.String("pred", "", "predictions JSON from `midas -json` (required)")
		factsPath  = flag.String("facts", "", "extraction corpus TSV (required)")
		silverPath = flag.String("silver", "", "silver-facts TSV from midas-datagen (required)")
		verbose    = flag.Bool("v", false, "print per-slice matches")
		statsPath  = flag.String("stats", "", "write a JSON metrics snapshot (scoring counters and timings) to this file")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat  = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fatal(err)
	}
	if *predPath == "" || *factsPath == "" || *silverPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	space := kb.NewSpace()

	pred, err := loadPredictions(*predPath)
	if err != nil {
		fatal(err)
	}
	// Index corpus facts by subject, remembering each fact's source.
	type located struct {
		t   kb.Triple
		src string
	}
	bySubject := make(map[string][]located)
	if err := eachTSV(*factsPath, func(parts []string) error {
		if len(parts) < 3 {
			return fmt.Errorf("want ≥3 fields, got %d", len(parts))
		}
		url := ""
		if len(parts) > 4 {
			url = parts[4]
		}
		bySubject[parts[0]] = append(bySubject[parts[0]], located{
			t:   space.Intern(parts[0], parts[1], parts[2]),
			src: source.Normalize(url),
		})
		return nil
	}); err != nil {
		fatal(err)
	}

	// Predicted fact sets: facts of the slice's entities located at or
	// under the slice's source.
	predSets := make([][]kb.Triple, len(pred.Slices))
	for i, s := range pred.Slices {
		var set []kb.Triple
		for _, e := range s.Entities {
			for _, loc := range bySubject[e] {
				if loc.src == s.Source || strings.HasPrefix(loc.src, s.Source+"/") {
					set = append(set, loc.t)
				}
			}
		}
		sortTriples(set)
		predSets[i] = set
	}

	// Silver fact sets, grouped by slice index.
	type silverSlice struct {
		desc  string
		facts []kb.Triple
	}
	silverByIdx := make(map[string]*silverSlice)
	var silverOrder []string
	if err := eachTSV(*silverPath, func(parts []string) error {
		if len(parts) != 6 {
			return fmt.Errorf("want 6 fields, got %d", len(parts))
		}
		key := parts[0]
		ss, ok := silverByIdx[key]
		if !ok {
			ss = &silverSlice{desc: parts[2] + " @ " + parts[1]}
			silverByIdx[key] = ss
			silverOrder = append(silverOrder, key)
		}
		ss.facts = append(ss.facts, space.Intern(parts[3], parts[4], parts[5]))
		return nil
	}); err != nil {
		fatal(err)
	}
	silverSets := make([][]kb.Triple, len(silverOrder))
	silverDescs := make([]string, len(silverOrder))
	for i, key := range silverOrder {
		sortTriples(silverByIdx[key].facts)
		silverSets[i] = silverByIdx[key].facts
		silverDescs[i] = silverByIdx[key].desc
	}

	// Score, reporting the evaluation's own counters into the obs
	// registry so long-running curation loops that shell out to
	// midas-eval per iteration leave a metrics trail (-stats below).
	reg := obs.Default()
	scoreStart := time.Now()
	matches := eval.MatchSilver(predSets, silverSets)
	score := eval.Score(predSets, silverSets)
	reg.Timer("eval/score").Observe(time.Since(scoreStart))
	reg.Counter("eval/evaluations").Inc()
	reg.Counter("eval/predicted_slices").Add(int64(score.Predicted))
	reg.Counter("eval/silver_slices").Add(int64(score.Expected))
	reg.Counter("eval/matched_slices").Add(int64(score.TruePos))
	reg.Gauge("eval/precision").Set(score.Precision)
	reg.Gauge("eval/recall").Set(score.Recall)
	reg.Gauge("eval/f1").Set(score.F1)
	if *verbose {
		for i, m := range matches {
			label := "NO MATCH"
			if m >= 0 {
				label = silverDescs[m]
			}
			fmt.Printf("pred %3d (%s, %d facts) → %s\n", i, pred.Slices[i].Source, len(predSets[i]), label)
		}
	}
	fmt.Printf("predicted %d slices, silver %d slices\n", score.Predicted, score.Expected)
	fmt.Printf("precision %.3f  recall %.3f  f-measure %.3f  (matched %d)\n",
		score.Precision, score.Recall, score.F1, score.TruePos)
	if *statsPath != "" {
		if err := reg.WriteFile(*statsPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *statsPath)
	}
}

func loadPredictions(path string) (*prediction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var p prediction
	if err := json.NewDecoder(f).Decode(&p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}

func eachTSV(path string, fn func(parts []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := fn(strings.Split(text, "\t")); err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	return sc.Err()
}

func sortTriples(ts []kb.Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas-eval:", err)
	os.Exit(1)
}
