// Command midas-datagen emits the evaluation datasets as files:
// facts.tsv (subject, predicate, object, confidence, url), kb.tsv
// (the existing knowledge base), and silver.tsv (the expected slices:
// source, description, fact count).
//
// Usage:
//
//	midas-datagen -dataset reverb-slim -out ./data [-seed 7] [-scale 1]
//
// Datasets: synthetic, reverb-slim, nell-slim, reverb, nell, kv.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"midas/internal/datagen"
	"midas/internal/fact"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/rdf"
)

func main() {
	var (
		dataset   = flag.String("dataset", "reverb-slim", "synthetic | reverb-slim | nell-slim | reverb | nell | kv")
		out       = flag.String("out", ".", "output directory")
		seed      = flag.Int64("seed", 7, "generator seed")
		scale     = flag.Float64("scale", 0.5, "size multiplier for the full corpora")
		facts     = flag.Int("facts", 5000, "fact count for the synthetic dataset")
		optimal   = flag.Int("optimal", 10, "optimal slice count for the synthetic dataset")
		format    = flag.String("format", "tsv", "output format: tsv | binary | ntriples")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error|off")
		logFormat = flag.String("log-format", "logfmt", "log encoding: logfmt|json")
	)
	flag.Parse()
	if err := obs.InstallDefaultLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "midas-datagen:", err)
		os.Exit(1)
	}

	var corpus *fact.Corpus
	var existing *kb.KB
	var silver []datagen.GroundSlice

	switch *dataset {
	case "synthetic":
		p := datagen.DefaultSyntheticParams()
		p.Facts = *facts
		p.Optimal = *optimal
		p.Seed = *seed
		syn := datagen.NewSynthetic(p)
		corpus, existing, silver = syn.Corpus, syn.KB, syn.Optimal
	case "reverb-slim":
		w := datagen.ReVerbSlim(datagen.DefaultSlimParams(*seed))
		corpus, existing, silver = w.Corpus, w.KB, w.Silver
	case "nell-slim":
		w := datagen.NELLSlim(datagen.DefaultSlimParams(*seed))
		corpus, existing, silver = w.Corpus, w.KB, w.Silver
	case "reverb":
		w := datagen.ReVerbLike(datagen.FullParams{Scale: *scale, Seed: *seed})
		corpus, existing, silver = w.Corpus, w.KB, w.Silver
	case "nell":
		w := datagen.NELLLike(datagen.FullParams{Scale: *scale, Seed: *seed})
		corpus, existing, silver = w.Corpus, w.KB, w.Silver
	case "kv":
		w := datagen.KnowledgeVaultSim(*seed)
		corpus, existing, silver = w.Corpus, w.KB, w.Silver
	default:
		fmt.Fprintf(os.Stderr, "midas-datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *format == "ntriples" {
		if err := writeFile(filepath.Join(*out, "facts.nq"), func(w io.Writer) error {
			return rdf.SaveCorpus(w, corpus)
		}); err != nil {
			fatal(err)
		}
		if err := writeFile(filepath.Join(*out, "kb.nt"), func(w io.Writer) error {
			return rdf.SaveKB(w, existing)
		}); err != nil {
			fatal(err)
		}
	} else if *format == "binary" {
		if err := writeFile(filepath.Join(*out, "facts.bin"), corpus.WriteBinary); err != nil {
			fatal(err)
		}
		if err := writeFile(filepath.Join(*out, "kb.bin"), existing.WriteBinary); err != nil {
			fatal(err)
		}
	} else {
		if err := writeFacts(filepath.Join(*out, "facts.tsv"), corpus); err != nil {
			fatal(err)
		}
		if err := writeKB(filepath.Join(*out, "kb.tsv"), existing); err != nil {
			fatal(err)
		}
	}
	if err := writeSilver(filepath.Join(*out, "silver.tsv"), silver); err != nil {
		fatal(err)
	}
	if err := writeSilverFacts(filepath.Join(*out, "silver-facts.tsv"), corpus, silver); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d facts, %d KB facts, %d silver slices to %s\n",
		len(corpus.Facts), existing.Size(), len(silver), *out)
}

func writeFacts(path string, corpus *fact.Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, e := range corpus.Facts {
		s, p, o := corpus.Space.StringTriple(e.Triple)
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%s\n", s, p, o, e.Conf, corpus.URLs.String(e.URL))
	}
	return w.Flush()
}

func writeKB(path string, existing *kb.KB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return existing.WriteTSV(f)
}

func writeSilver(path string, silver []datagen.GroundSlice) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, gs := range silver {
		fmt.Fprintf(w, "%s\t%s\t%d\n", gs.Source, gs.Description, len(gs.Facts))
	}
	return w.Flush()
}

// writeSilverFacts emits the silver slices' fact sets, one fact per
// line: slice index, source, description, subject, predicate, object.
// midas-eval reconstructs the silver fact sets from this file.
func writeSilverFacts(path string, corpus *fact.Corpus, silver []datagen.GroundSlice) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, gs := range silver {
		for _, t := range gs.Facts {
			s, p, o := corpus.Space.StringTriple(t)
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\n", i, gs.Source, gs.Description, s, p, o)
		}
	}
	return w.Flush()
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "midas-datagen:", err)
	os.Exit(1)
}
