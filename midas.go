// Package midas implements MIDAS (ICDE 2019): discovery of high-profit
// web source slices for knowledge-base augmentation from the output of
// automated knowledge-extraction pipelines.
//
// A web source slice describes a coherent subset of a web source's
// content — a set of entities sharing (predicate, value) properties,
// such as "rocket families sponsored by NASA" on
// space.skyrocket.de/doc_lau_fam — together with what extracting it
// would contribute to an existing knowledge base. MIDAS scores slices
// with a profit function (gain in new facts minus crawling,
// de-duplication, and validation costs) and discovers the best set
// across millions of sources by exploiting the URL hierarchy.
//
// Basic usage:
//
//	existing := midas.NewKB()
//	existing.Add("Project Mercury", "category", "space_program")
//
//	corpus := midas.NewCorpus(existing)
//	corpus.Add(midas.Fact{
//		Subject: "Atlas", Predicate: "category", Object: "rocket_family",
//		Confidence: 0.92, URL: "http://space.skyrocket.de/doc_lau_fam/atlas.htm",
//	})
//	// ... add the rest of the extraction output ...
//
//	result := midas.Discover(corpus, existing, nil)
//	for _, s := range result.Slices {
//		fmt.Printf("%s — %s (%d new facts, profit %.1f)\n",
//			s.Source, s.Description, s.NewFacts, s.Profit)
//	}
//
// The underlying algorithm (MIDASalg) and the parallel multi-source
// framework are described in DESIGN.md and implemented in the internal
// packages; this package is the stable public surface.
package midas

import (
	"context"
	"io"

	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/fuse"
	"midas/internal/kb"
	"midas/internal/rdf"
	"midas/internal/reason"
	"midas/internal/slice"
)

// Fact is one extracted fact: an RDF triple with the extraction
// confidence and the URL of the page it was extracted from.
type Fact = fact.Fact

// Detector is the per-source detection phase of the framework: it runs
// slice detection over one web source's fact table, seeded with the
// per-entity property sets. Options.Detect substitutes it; the types it
// operates on live in the internal packages, so custom detectors are a
// testing seam (stall injection, invocation counting), not a public
// extension point.
type Detector = framework.Detector

// CostModel holds the coefficients of the profit function f(S) = gain −
// cost (Definition 9 of the paper): Fp is the per-slice training cost,
// Fc the per-fact crawling cost, Fd the per-fact de-duplication cost,
// and Fv the per-new-fact validation cost.
type CostModel = slice.CostModel

// DefaultCostModel returns the paper's coefficients
// (f_p=10, f_c=0.001, f_d=0.01, f_v=0.1).
func DefaultCostModel() CostModel { return slice.DefaultCostModel() }

// KB is an existing knowledge base: the reference that decides which
// extracted facts are new. The zero value is not usable; call NewKB.
type KB struct {
	store *kb.KB
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{store: kb.New(kb.NewSpace())}
}

// Add inserts a fact, reporting whether it was new.
func (k *KB) Add(subject, predicate, object string) bool {
	return k.store.AddStrings(subject, predicate, object)
}

// Contains reports whether the fact is present.
func (k *KB) Contains(subject, predicate, object string) bool {
	return k.store.ContainsStrings(subject, predicate, object)
}

// Size returns the number of stored facts.
func (k *KB) Size() int { return k.store.Size() }

// LoadTSV reads tab-separated (subject, predicate, object) lines,
// returning the number of new facts added.
func (k *KB) LoadTSV(r io.Reader) (int, error) { return k.store.ReadTSV(r) }

// SaveTSV writes the knowledge base as sorted tab-separated lines.
func (k *KB) SaveTSV(w io.Writer) error { return k.store.WriteTSV(w) }

// LoadBinary reads the compact binary format written by SaveBinary,
// returning the number of new facts added.
func (k *KB) LoadBinary(r io.Reader) (int, error) { return k.store.ReadBinary(r) }

// LoadNTriples reads W3C N-Triples (or N-Quads; graph terms are
// ignored), returning the number of new facts added.
func (k *KB) LoadNTriples(r io.Reader) (int, error) { return rdf.LoadKB(r, k.store) }

// SaveNTriples writes the knowledge base as N-Triples. Strings that are
// not IRI-safe are wrapped as urn:midas: IRIs so the round trip is
// exact.
func (k *KB) SaveNTriples(w io.Writer) error { return rdf.SaveKB(w, k.store) }

// SaveBinary writes the knowledge base in a compact dictionary-encoded
// binary format (typically several times smaller than the TSV).
func (k *KB) SaveBinary(w io.Writer) error { return k.store.WriteBinary(w) }

// Corpus collects the output of an automated extraction pipeline.
type Corpus struct {
	c *fact.Corpus
}

// NewCorpus returns an empty corpus. Passing the KB the corpus will be
// discovered against lets the two share interned strings; nil is
// allowed but Discover then requires the same nil KB.
func NewCorpus(existing *KB) *Corpus {
	if existing == nil {
		return &Corpus{c: fact.NewCorpus(nil)}
	}
	return &Corpus{c: fact.NewCorpus(existing.store.Space())}
}

// Add appends an extracted fact.
func (c *Corpus) Add(f Fact) { c.c.Add(f) }

// Len returns the number of facts added.
func (c *Corpus) Len() int { return len(c.c.Facts) }

// LoadNQuads reads W3C N-Quads, using each statement's graph term as
// the source page URL. N-Quads carry no confidence; every fact receives
// defaultConfidence. It returns the number of facts read.
func (c *Corpus) LoadNQuads(r io.Reader, defaultConfidence float64) (int, error) {
	return rdf.LoadCorpus(r, c.c, defaultConfidence)
}

// SaveNQuads writes the corpus as N-Quads (source URLs as graph terms;
// confidences are dropped — use the binary format to preserve them).
func (c *Corpus) SaveNQuads(w io.Writer) error { return rdf.SaveCorpus(w, c.c) }

// LoadBinary appends facts from the compact binary format written by
// SaveBinary (confidences preserved), returning the number read.
func (c *Corpus) LoadBinary(r io.Reader) (int, error) { return c.c.ReadBinary(r) }

// SaveBinary writes the corpus in the compact dictionary-encoded binary
// format, preserving confidences and source URLs.
func (c *Corpus) SaveBinary(w io.Writer) error { return c.c.WriteBinary(w) }

// Property is one (predicate, value) condition of a slice description.
type Property struct {
	Predicate string
	Value     string
}

// Slice is a discovered web source slice: what to extract (Properties)
// and from where (Source), with its contribution statistics.
type Slice struct {
	// Source is the web source at the granularity MIDAS recommends
	// extracting from (domain, sub-domain path, or page).
	Source string
	// Description renders Properties as a conjunction.
	Description string
	// Properties is the canonical property set defining the slice.
	Properties []Property
	// Entities are the subjects the slice selects.
	Entities []string
	// Facts is the slice's fact count; NewFacts of them are absent from
	// the knowledge base.
	Facts    int
	NewFacts int
	// Profit is the slice's score under the cost model.
	Profit float64
}

// Result is the output of a discovery run, slices sorted by decreasing
// profit.
type Result struct {
	Slices []Slice
	// Rounds is the number of URL-hierarchy levels processed.
	Rounds int
	// SourcesProcessed counts per-source detector invocations.
	SourcesProcessed int
	// SourcesReused counts sources answered from the previous run's
	// cached detection results instead of invoking the detector — only
	// Session discoveries reuse (package-level Discover always runs from
	// scratch, leaving it 0).
	SourcesReused int
	// Fingerprint is the session fingerprint the result was computed at
	// (Session.Fingerprint read under the same lock as the discovery),
	// 0 for package-level Discover. Caches key results by it.
	Fingerprint uint64
}

// Options tunes discovery. The zero value (or nil) uses the paper's
// defaults.
type Options struct {
	// Cost is the profit model (zero value = DefaultCostModel).
	Cost CostModel
	// Workers bounds the run's worker budget (0 = GOMAXPROCS). The
	// budget is shared between source-level parallelism (concurrent
	// shards) and lattice-level parallelism within each source's
	// hierarchy build; results are identical for every setting.
	Workers int
	// MinConfidence drops extracted facts at or below this confidence
	// before discovery (the paper uses 0.7; 0 keeps everything).
	MinConfidence float64
	// Fuse runs confidence-weighted conflict resolution before
	// discovery (the data-fusion preprocessing the paper cites):
	// on predicates that look functional, conflicting objects for one
	// subject collapse to the highest-confidence value.
	Fuse bool
	// MaxPropsPerEntity and MaxInitCombos bound per-entity lattice
	// seeding (0 = library defaults; see internal/hierarchy).
	MaxPropsPerEntity int
	MaxInitCombos     int
	// MaxSlices imposes an extraction budget: after discovery, at most
	// this many slices are kept, selected greedily by marginal profit
	// over the fact union (0 = keep everything).
	MaxSlices int
	// NumericBucketWidth, when positive, rewrites numeric object values
	// of predominantly-numeric predicates into ranges of this width
	// before discovery ("started = 1957" → "started = [1950,1960)"),
	// enabling the generalized properties the paper sketches.
	NumericBucketWidth float64
	// TypeOntology, with TypePredicates, expands type facts along
	// subclass edges before discovery so slices can form at broader
	// types ("golf courses" and "ski resorts" surfacing together as
	// "sports facilities"). Both must be set for expansion to run, and
	// the ontology must have been created against this corpus's KB (via
	// NewCorpus sharing).
	TypeOntology   *Ontology
	TypePredicates []string
	// Metrics receives the run's observability data (phase timings,
	// pruning counters, worker utilization). nil reports into the
	// shared DefaultMetrics() registry.
	Metrics *Metrics
	// Trace receives the run's spans (pipeline phases down to per-source
	// detect/consolidate), exportable as Chrome trace-event JSON. nil
	// disables tracing.
	Trace *Tracer
	// Detect substitutes the per-source detection phase (nil = MIDASalg).
	// A fault-injection and testing seam: wrappers can stall, count, or
	// perturb detection while the framework's scheduling, consolidation,
	// and reuse logic runs unchanged.
	Detect Detector
}

func (o *Options) orDefault() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// Discover runs the full MIDAS pipeline — per-source slice discovery
// (MIDASalg) under the parallel multi-source framework with URL-
// hierarchy consolidation — over the corpus against the existing KB
// (nil = build a knowledge base from scratch).
func Discover(corpus *Corpus, existing *KB, opts *Options) *Result {
	res, _ := DiscoverContext(context.Background(), corpus, existing, opts)
	return res
}

// DiscoverContext is Discover with cancellation: on context
// cancellation the slices finalized so far are returned along with the
// context's error.
func DiscoverContext(ctx context.Context, corpus *Corpus, existing *KB, opts *Options) (*Result, error) {
	o := opts.orDefault()
	res, _, err := discover(ctx, corpus, existing, &o, nil, nil)
	return res, err
}

// discover runs the pipeline, optionally reusing a prior run's
// per-source detection results (Session's incremental path). The
// transforms run before leaf-source fingerprinting inside the
// framework, so a source only reuses when the facts the framework
// actually sees are unchanged — a transform whose output shifted (a
// fused conflict resolved differently, a new bucket boundary) changes
// the fingerprints and forces a rebuild of the affected sources.
func discover(ctx context.Context, corpus *Corpus, existing *KB, o *Options, prior *framework.Prior, delta []kb.Triple) (*Result, *framework.Prior, error) {
	c := corpus.c
	if o.MinConfidence > 0 {
		c = c.FilterConfidence(o.MinConfidence)
	}
	if o.Fuse {
		c, _ = fuse.Fuse(c, fuse.DefaultParams())
	}
	if o.NumericBucketWidth > 0 {
		c = fact.BucketNumeric(c, o.NumericBucketWidth, 5)
	}
	if o.TypeOntology != nil && len(o.TypePredicates) > 0 {
		c, _ = reason.ExpandTypes(c, o.TypeOntology.o, o.TypePredicates)
	}
	var store *kb.KB
	if existing != nil {
		store = existing.store
	}
	out, runErr := framework.RunContext(ctx, c, store, framework.Options{
		Cost:    o.Cost,
		Workers: o.Workers,
		Obs:     o.Metrics.registry(),
		Trace:   o.Trace.tracer(),
		Prior:   prior,
		Delta:   delta,
		Detect:  o.Detect,
		Core: core.Options{
			Cost:              o.Cost,
			Workers:           o.Workers,
			MaxPropsPerEntity: o.MaxPropsPerEntity,
			MaxInitCombos:     o.MaxInitCombos,
			Obs:               o.Metrics.registry(),
		},
	})
	keep := make([]bool, len(out.Slices))
	if o.MaxSlices > 0 && o.MaxSlices < len(out.Slices) {
		cost := o.Cost
		if cost == (CostModel{}) {
			cost = DefaultCostModel()
		}
		for _, i := range slice.SelectGreedy(out.FactSets, store, cost, o.MaxSlices) {
			keep[i] = true
		}
	} else {
		for i := range keep {
			keep[i] = true
		}
	}
	res := &Result{
		Rounds:           out.Rounds,
		SourcesProcessed: out.SourcesProcessed,
		SourcesReused:    out.SourcesReused,
	}
	for i, s := range out.Slices {
		if keep[i] {
			res.Slices = append(res.Slices, publish(s, c.Space))
		}
	}
	return res, out.NextPrior, runErr
}

// DiscoverSource runs MIDASalg on the facts of a single web source,
// ignoring URL structure. Use Discover for multi-source corpora.
func DiscoverSource(source string, facts []Fact, existing *KB, opts *Options) *Result {
	o := opts.orDefault()
	var store *kb.KB
	var space *kb.Space
	if existing != nil {
		store = existing.store
		space = store.Space()
	} else {
		space = kb.NewSpace()
	}
	var triples []kb.Triple
	for _, f := range facts {
		if o.MinConfidence > 0 && f.Confidence <= o.MinConfidence {
			continue
		}
		triples = append(triples, space.Intern(f.Subject, f.Predicate, f.Object))
	}
	res := core.Discover(source, space, triples, store, core.Options{
		Cost:              o.Cost,
		Workers:           o.Workers,
		MaxPropsPerEntity: o.MaxPropsPerEntity,
		MaxInitCombos:     o.MaxInitCombos,
		Obs:               o.Metrics.registry(),
	})
	out := &Result{SourcesProcessed: 1}
	for _, s := range res.Slices {
		out.Slices = append(out.Slices, publish(s, space))
	}
	return out
}

func publish(s *slice.Slice, space *kb.Space) Slice {
	props := make([]Property, len(s.Props))
	for i, p := range s.Props {
		props[i] = Property{
			Predicate: space.Predicates.String(p.Pred()),
			Value:     space.Objects.String(p.Value()),
		}
	}
	ents := make([]string, s.Entities.Len())
	for i, e := range s.Entities.Values() {
		ents[i] = space.Subjects.String(e)
	}
	return Slice{
		Source:      s.Source,
		Description: s.Description(space),
		Properties:  props,
		Entities:    ents,
		Facts:       s.Facts,
		NewFacts:    s.NewFacts,
		Profit:      s.Profit,
	}
}
