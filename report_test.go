package midas_test

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"
	"testing"

	"midas"
)

func reportResult(t *testing.T) *midas.Result {
	t.Helper()
	corpus := midas.NewCorpus(nil)
	for v := 0; v < 3; v++ {
		for i := 0; i < 20+10*v; i++ {
			url := fmt.Sprintf("http://site%d.example.com/wiki/e%d.htm", v, i)
			corpus.Add(midas.Fact{Subject: fmt.Sprintf("v%d entity %d", v, i),
				Predicate: "kind", Object: fmt.Sprintf("type%d", v), Confidence: 0.9, URL: url})
			corpus.Add(midas.Fact{Subject: fmt.Sprintf("v%d entity %d", v, i),
				Predicate: "size", Object: fmt.Sprintf("s%d", i), Confidence: 0.9, URL: url})
		}
	}
	res := midas.Discover(corpus, nil, nil)
	if len(res.Slices) != 3 {
		t.Fatalf("want 3 slices, got %d", len(res.Slices))
	}
	return res
}

func TestMarkdownReport(t *testing.T) {
	res := reportResult(t)
	var buf bytes.Buffer
	if err := res.WriteMarkdownReport(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# MIDAS discovery report",
		"3 slices across 3 web sources",
		"| 1 |",
		"kind = type2", // the biggest vertical ranks first
		"## 1.",
		"## 2.",
		"(sample:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "## 3.") {
		t.Error("top=2 must suppress the third detail section")
	}
}

func TestMarkdownReportTinySlice(t *testing.T) {
	// A slice with fewer than 5 entities must not panic the sampler.
	corpus := midas.NewCorpus(nil)
	for i := 0; i < 3; i++ {
		corpus.Add(midas.Fact{Subject: fmt.Sprintf("e%d", i), Predicate: "k", Object: "t",
			Confidence: 0.9, URL: fmt.Sprintf("http://s.example.com/p%d.htm", i)})
	}
	res := midas.Discover(corpus, nil, &midas.Options{Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1}})
	if len(res.Slices) == 0 {
		t.Fatal("no slices")
	}
	var buf bytes.Buffer
	if err := res.WriteMarkdownReport(&buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCSVReport(t *testing.T) {
	res := reportResult(t)
	var buf bytes.Buffer
	if err := res.WriteCSVReport(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 slices
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0][0] != "rank" || len(rows[0]) != 8 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "1" || !strings.Contains(rows[1][7], "kind=") {
		t.Errorf("row 1 = %v", rows[1])
	}
}

func TestTopSources(t *testing.T) {
	res := reportResult(t)
	top := res.TopSources()
	if len(top) != 3 {
		t.Fatalf("sources = %d, want 3", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].TotalProfit > top[i-1].TotalProfit {
			t.Error("sources not sorted by profit")
		}
	}
	if top[0].Slices != 1 || top[0].NewFacts == 0 {
		t.Errorf("top source summary = %+v", top[0])
	}
}
