package midas_test

import (
	"fmt"
	"strings"

	"midas"
)

// The paper's running example: six facts about NASA rocket families are
// missing from the knowledge base; MIDAS recommends extracting "rocket
// families sponsored by NASA" from the sub-domain that hosts them.
func ExampleDiscover() {
	existing := midas.NewKB()
	existing.Add("Project Mercury", "category", "space_program")
	existing.Add("Project Mercury", "sponsor", "NASA")

	corpus := midas.NewCorpus(existing)
	for _, f := range []midas.Fact{
		{Subject: "Project Mercury", Predicate: "category", Object: "space_program",
			Confidence: 0.9, URL: "http://space.skyrocket.de/doc_sat/mercury-history.htm"},
		{Subject: "Atlas", Predicate: "category", Object: "rocket_family",
			Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/atlas.htm"},
		{Subject: "Atlas", Predicate: "sponsor", Object: "NASA",
			Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/atlas.htm"},
		{Subject: "Castor-4", Predicate: "category", Object: "rocket_family",
			Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/castor-4.htm"},
		{Subject: "Castor-4", Predicate: "sponsor", Object: "NASA",
			Confidence: 0.9, URL: "http://space.skyrocket.de/doc_lau_fam/castor-4.htm"},
	} {
		corpus.Add(f)
	}

	result := midas.Discover(corpus, existing, &midas.Options{
		Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	for _, s := range result.Slices {
		fmt.Printf("extract %q from %s (%d new facts)\n", s.Description, s.Source, s.NewFacts)
	}
	// Output:
	// extract "category = rocket_family AND sponsor = NASA" from space.skyrocket.de/doc_lau_fam (4 new facts)
}

// DiscoverSource runs MIDASalg on one web source without URL-hierarchy
// processing.
func ExampleDiscoverSource() {
	facts := []midas.Fact{
		{Subject: "Margarita", Predicate: "base", Object: "tequila", Confidence: 0.9},
		{Subject: "Paloma", Predicate: "base", Object: "tequila", Confidence: 0.9},
		{Subject: "Negroni", Predicate: "base", Object: "gin", Confidence: 0.9},
	}
	result := midas.DiscoverSource("drinks.example.com", facts, nil, &midas.Options{
		Cost: midas.CostModel{Fp: 0.5, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	for _, s := range result.Slices {
		fmt.Println(s.Description, "-", len(s.Entities), "entities")
	}
	// Output:
	// base = tequila - 2 entities
	// base = gin - 1 entities
}

// KBs round-trip through standard N-Triples.
func ExampleKB_SaveNTriples() {
	k := midas.NewKB()
	k.Add("Atlas", "sponsor", "NASA")
	var sb strings.Builder
	if err := k.SaveNTriples(&sb); err != nil {
		panic(err)
	}
	fmt.Print(sb.String())
	// Output:
	// <Atlas> <sponsor> "NASA" .
}

// Session drives the iterative augmentation loop: discover, absorb the
// best slice into the KB, rediscover.
func ExampleSession() {
	sess := midas.NewSession(nil, &midas.Options{
		Cost: midas.CostModel{Fp: 1, Fc: 0.001, Fd: 0.01, Fv: 0.1},
	})
	for i := 0; i < 8; i++ {
		sess.AddFacts(midas.Fact{
			Subject:    fmt.Sprintf("species-%d", i),
			Predicate:  "kingdom",
			Object:     "animalia",
			Confidence: 0.9,
			URL:        fmt.Sprintf("https://wildlife.example.org/species/e%d.htm", i),
		})
	}
	for round := 1; ; round++ {
		res := sess.Discover()
		if len(res.Slices) == 0 {
			fmt.Printf("round %d: nothing left to extract\n", round)
			break
		}
		top := res.Slices[0]
		added := sess.Absorb(top)
		fmt.Printf("round %d: absorbed %q (%d facts)\n", round, top.Description, added)
	}
	// Output:
	// round 1: absorbed "kingdom = animalia" (8 facts)
	// round 2: nothing left to extract
}
