package midas

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"

	"midas/internal/idset"
	"midas/internal/obs"
	"midas/internal/source"
)

// Session drives the iterative knowledge-base augmentation loop the
// paper's industrial pipeline targets (Figure 1): discover the most
// profitable slices, extract them (wrapper induction + validation in
// production; Absorb here), and re-discover — each round's
// recommendations shift as the knowledge gaps move.
//
//	sess := midas.NewSession(existing, nil)
//	sess.AddFacts(extractionOutput...)
//	for {
//		res := sess.Discover()
//		if len(res.Slices) == 0 {
//			break
//		}
//		for _, s := range res.Slices[:min(3, len(res.Slices))] {
//			sess.Absorb(s)
//		}
//	}
//
// Session is safe for concurrent use: an RWMutex guards the core, with
// Discover/DiscoverContext running as readers (so independent
// discoveries overlap) and the mutators (AddFacts, Absorb) plus the
// methods that lazily rebuild indexes (Progress) serializing as
// writers. Mutating the KB returned by KB() directly, concurrently with
// a discovery, is not synchronized — route KB growth through Absorb or
// quiesce discoveries first.
type Session struct {
	mu     sync.RWMutex
	kb     *KB
	corpus *Corpus
	opts   Options

	// bySubject indexes corpus facts for Absorb; rebuilt lazily after
	// AddFacts.
	bySubject map[string][]sessionFact
	dirty     bool

	// factFP is the running FNV-1a fingerprint over the first fpFacts
	// corpus facts; Fingerprint extends it incrementally as the
	// append-only corpus grows.
	factFP  uint64
	fpFacts int
}

type sessionFact struct {
	f   Fact
	src string
}

// NewSession starts a session against an existing KB (nil = build a
// knowledge base from scratch) with the given discovery options.
func NewSession(existing *KB, opts *Options) *Session {
	if existing == nil {
		existing = NewKB()
	}
	return &Session{
		kb:     existing,
		corpus: NewCorpus(existing),
		opts:   opts.orDefault(),
		factFP: idset.FingerprintSeed,
	}
}

// KB returns the session's knowledge base (it grows as slices are
// absorbed). Mutating it while discoveries are in flight is not
// synchronized; see the Session doc comment.
func (s *Session) KB() *KB { return s.kb }

// metrics returns the registry session counters report into: the one
// configured via Options.Metrics, else the process-wide default — the
// same fallback the pipeline itself uses, so a long-running curation
// session exposes its per-iteration counters through the -stats and
// -listen surfaces without extra wiring.
func (s *Session) metrics() *obs.Registry {
	return s.opts.Metrics.registry().OrDefault()
}

// CorpusSize returns the number of extraction facts loaded.
func (s *Session) CorpusSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.corpus.Len()
}

// AddFacts appends extraction output to the session corpus.
func (s *Session) AddFacts(facts ...Fact) {
	s.mu.Lock()
	for _, f := range facts {
		s.corpus.Add(f)
	}
	s.dirty = s.dirty || len(facts) > 0
	s.mu.Unlock()
	s.metrics().Counter("session/facts_added").Add(int64(len(facts)))
}

// Fingerprint identifies the discovery-relevant state of the session: a
// 64-bit FNV-1a hash over the fact table (interned triples, source
// URLs, confidences) folded with the KB's fact count. Two calls return
// the same value iff no facts were added and the KB did not grow in
// between, so Discover results can be cached keyed by it (see
// internal/serve). The corpus hash is maintained incrementally — on an
// unchanged session this is O(1).
func (s *Session) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	facts := s.corpus.c.Facts
	for _, e := range facts[s.fpFacts:] {
		s.factFP = idset.AppendFingerprint64(s.factFP, []uint64{
			uint64(uint32(e.Triple.S))<<32 | uint64(uint32(e.Triple.P)),
			uint64(uint32(e.Triple.O))<<32 | uint64(uint32(e.URL)),
			uint64(math.Float32bits(e.Conf)),
		})
	}
	s.fpFacts = len(facts)
	return idset.AppendFingerprint64(s.factFP, []uint64{uint64(s.kb.Size())})
}

// Discover runs the full pipeline over the current corpus against the
// current KB.
func (s *Session) Discover() *Result {
	res, _ := s.DiscoverContext(context.Background())
	return res
}

// DiscoverContext is Discover with cancellation: request deadlines and
// client disconnects propagate into the pipeline, which returns the
// slices finalized so far together with the context's error. Multiple
// discoveries may run concurrently (they hold the session's read lock);
// AddFacts and Absorb wait for in-flight discoveries to finish.
func (s *Session) DiscoverContext(ctx context.Context) (*Result, error) {
	reg := s.metrics()
	defer reg.Timer("session/discover").Start()()
	s.mu.RLock()
	res, err := DiscoverContext(ctx, s.corpus, s.kb, &s.opts)
	s.mu.RUnlock()
	reg.Counter("session/discoveries").Inc()
	reg.Gauge("session/last_slices").Set(float64(len(res.Slices)))
	return res, err
}

// Absorb simulates extracting a recommended slice: every corpus fact of
// the slice's entities located at or under the slice's source is added
// to the KB. It returns the number of facts that were new. Subsequent
// Discover calls no longer count these facts as gain.
func (s *Session) Absorb(sl Slice) int {
	reg := s.metrics()
	defer reg.Timer("session/absorb").Start()()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reindex()
	members := make(map[string]bool, len(sl.Entities))
	for _, e := range sl.Entities {
		members[e] = true
	}
	added := 0
	for e := range members {
		for _, sf := range s.bySubject[e] {
			if sf.src != sl.Source && !strings.HasPrefix(sf.src, sl.Source+"/") {
				continue
			}
			if s.kb.Add(sf.f.Subject, sf.f.Predicate, sf.f.Object) {
				added++
			}
		}
	}
	reg.Counter("session/absorbs").Inc()
	reg.Counter("session/facts_absorbed").Add(int64(added))
	reg.Gauge("session/kb_facts").Set(float64(s.kb.Size()))
	return added
}

// Progress reports the augmentation state: KB size and how much of the
// corpus the KB now covers (deduplicated fact-level coverage).
func (s *Session) Progress() (kbFacts int, corpusCovered float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reindex()
	type key struct{ s, p, o string }
	seen := make(map[key]bool)
	covered, total := 0, 0
	subjects := make([]string, 0, len(s.bySubject))
	for subj := range s.bySubject {
		subjects = append(subjects, subj)
	}
	sort.Strings(subjects)
	for _, subj := range subjects {
		for _, sf := range s.bySubject[subj] {
			k := key{sf.f.Subject, sf.f.Predicate, sf.f.Object}
			if seen[k] {
				continue
			}
			seen[k] = true
			total++
			if s.kb.Contains(sf.f.Subject, sf.f.Predicate, sf.f.Object) {
				covered++
			}
		}
	}
	if total > 0 {
		corpusCovered = float64(covered) / float64(total)
	}
	reg := s.metrics()
	reg.Gauge("session/kb_facts").Set(float64(s.kb.Size()))
	reg.Gauge("session/corpus_coverage").Set(corpusCovered)
	return s.kb.Size(), corpusCovered
}

func (s *Session) reindex() {
	if !s.dirty && s.bySubject != nil {
		return
	}
	s.bySubject = make(map[string][]sessionFact)
	for _, e := range s.corpus.c.Facts {
		subj, pred, obj := s.corpus.c.Space.StringTriple(e.Triple)
		f := Fact{
			Subject: subj, Predicate: pred, Object: obj,
			Confidence: float64(e.Conf),
			URL:        s.corpus.c.URLs.String(e.URL),
		}
		s.bySubject[subj] = append(s.bySubject[subj], sessionFact{
			f:   f,
			src: source.Normalize(f.URL),
		})
	}
	s.dirty = false
}
