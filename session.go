package midas

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"

	"midas/internal/fact"
	"midas/internal/framework"
	"midas/internal/idset"
	"midas/internal/kb"
	"midas/internal/obs"
	"midas/internal/source"
)

// Session drives the iterative knowledge-base augmentation loop the
// paper's industrial pipeline targets (Figure 1): discover the most
// profitable slices, extract them (wrapper induction + validation in
// production; Absorb here), and re-discover — each round's
// recommendations shift as the knowledge gaps move.
//
//	sess := midas.NewSession(existing, nil)
//	sess.AddFacts(extractionOutput...)
//	for {
//		res := sess.Discover()
//		if len(res.Slices) == 0 {
//			break
//		}
//		for _, s := range res.Slices[:min(3, len(res.Slices))] {
//			sess.Absorb(s)
//		}
//	}
//
// Session is safe for concurrent use: an RWMutex guards the core, with
// Discover/DiscoverContext running as readers (so independent
// discoveries overlap) and the mutators (AddFacts, Absorb) plus the
// methods that lazily rebuild indexes (Progress) serializing as
// writers. Mutating the KB returned by KB() directly, concurrently with
// a discovery, is not synchronized — route KB growth through Absorb or
// quiesce discoveries first.
type Session struct {
	mu     sync.RWMutex
	kb     *KB
	corpus *Corpus
	opts   Options

	// bySubject indexes corpus facts for Absorb; rebuilt lazily after
	// AddFacts.
	bySubject map[string][]sessionFact
	dirty     bool

	// fpMu guards the incremental fingerprint state below. It is
	// separate from mu so Fingerprint can run under the read lock
	// (concurrently with discoveries) while still advancing the cache.
	fpMu sync.Mutex
	// factFP is the running FNV-1a fingerprint over the first fpFacts
	// corpus facts; Fingerprint extends it incrementally as the
	// append-only corpus grows.
	factFP  uint64
	fpFacts int

	// pmu guards the incremental-discovery state: the prior completed
	// run and the KB delta accumulated since it. mu's writers mutate
	// this state and mu's readers consume it, but pmu makes each access
	// atomic so concurrent discoveries (all readers) stay race-free.
	pmu sync.Mutex
	// prior is the reusable per-source state of the last completed
	// discovery; nil forces a from-scratch run.
	prior *framework.Prior
	// delta lists the triples Absorb added to the KB since prior was
	// captured; deltaTo is the KB epoch through which delta is complete.
	// deltaBroken records that the KB was mutated outside Absorb (via
	// KB()) while a prior was held, so delta can no longer be trusted
	// and the next discovery rebuilds from scratch.
	delta       []kb.Triple
	deltaTo     uint64
	deltaBroken bool
	// dirtySrcs names normalized sources touched by AddFacts/Absorb
	// since the last completed discovery — an advisory signal for
	// operators (DirtySources); the framework's per-source fingerprints
	// are the reuse authority.
	dirtySrcs map[string]struct{}
}

type sessionFact struct {
	f   Fact
	src string
}

// NewSession starts a session against an existing KB (nil = build a
// knowledge base from scratch) with the given discovery options.
func NewSession(existing *KB, opts *Options) *Session {
	if existing == nil {
		existing = NewKB()
	}
	return &Session{
		kb:     existing,
		corpus: NewCorpus(existing),
		opts:   opts.orDefault(),
		factFP: idset.FingerprintSeed,
	}
}

// KB returns the session's knowledge base (it grows as slices are
// absorbed). Mutating it while discoveries are in flight is not
// synchronized; see the Session doc comment.
func (s *Session) KB() *KB { return s.kb }

// metrics returns the registry session counters report into: the one
// configured via Options.Metrics, else the process-wide default — the
// same fallback the pipeline itself uses, so a long-running curation
// session exposes its per-iteration counters through the -stats and
// -listen surfaces without extra wiring.
func (s *Session) metrics() *obs.Registry {
	return s.opts.Metrics.registry().OrDefault()
}

// CorpusSize returns the number of extraction facts loaded.
func (s *Session) CorpusSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.corpus.Len()
}

// AddFacts appends extraction output to the session corpus. Only the
// touched sources become dirty: the next Discover rebuilds their
// tables and re-detects there, reusing the previous run's results for
// every clean source.
func (s *Session) AddFacts(facts ...Fact) {
	s.mu.Lock()
	for _, f := range facts {
		s.corpus.Add(f)
	}
	s.dirty = s.dirty || len(facts) > 0
	if len(facts) > 0 {
		s.pmu.Lock()
		if s.dirtySrcs == nil {
			s.dirtySrcs = make(map[string]struct{})
		}
		for _, f := range facts {
			if src := source.Normalize(f.URL); src != "" {
				s.dirtySrcs[src] = struct{}{}
			}
		}
		s.pmu.Unlock()
	}
	s.mu.Unlock()
	s.metrics().Counter("session/facts_added").Add(int64(len(facts)))
}

// Fingerprint identifies the discovery-relevant state of the session: a
// 64-bit FNV-1a hash over the fact table (interned triples, source
// URLs, confidences) folded with the KB's fact count and mutation
// epoch. Two calls return the same value iff no facts were added and
// the KB saw no writes in between — including writes that inserted
// only already-known triples, which leave the size unchanged but still
// advance the epoch — so Discover results can be cached keyed by it
// (see internal/serve). The corpus hash is maintained incrementally —
// on an unchanged session this is O(1).
func (s *Session) Fingerprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fingerprintLocked()
}

// fingerprintLocked computes the fingerprint under mu (read or write);
// fpMu serializes the incremental corpus-hash advance between
// concurrent readers.
func (s *Session) fingerprintLocked() uint64 {
	s.fpMu.Lock()
	defer s.fpMu.Unlock()
	facts := s.corpus.c.Facts
	for _, e := range facts[s.fpFacts:] {
		s.factFP = idset.AppendFingerprint64(s.factFP, []uint64{
			uint64(uint32(e.Triple.S))<<32 | uint64(uint32(e.Triple.P)),
			uint64(uint32(e.Triple.O))<<32 | uint64(uint32(e.URL)),
			uint64(math.Float32bits(e.Conf)),
		})
	}
	s.fpFacts = len(facts)
	return idset.AppendFingerprint64(s.factFP, []uint64{
		uint64(s.kb.Size()),
		s.kb.store.Epoch(),
	})
}

// SourceFingerprints returns the per-source FNV-1a fingerprints of the
// session corpus, keyed by normalized source URL — the signal the
// incremental path compares across runs to decide which sources are
// dirty. Facts whose URL normalizes to "" are excluded.
func (s *Session) SourceFingerprints() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64)
	for src, ls := range fact.LeafSources(s.corpus.c) {
		out[src] = ls.FP
	}
	return out
}

// DirtySources lists, sorted, the normalized sources touched by
// AddFacts or Absorb since the last completed discovery. It is an
// advisory operator signal: the framework decides actual reuse from
// per-source fingerprints and absorbed-triple containment, which also
// catch sources sharing facts with an absorbed slice.
func (s *Session) DirtySources() []string {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	out := make([]string, 0, len(s.dirtySrcs))
	for src := range s.dirtySrcs {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// usablePrior decides whether the last completed run can seed this one,
// and with which KB delta. Reuse requires either an untouched KB (epoch
// equal to the prior's) or a delta trail that is provably complete: the
// KB's epoch matches the last Absorb's and no untracked mutation broke
// the trail in between.
func (s *Session) usablePrior() (*framework.Prior, []kb.Triple) {
	epoch := s.kb.store.Epoch()
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.prior == nil {
		return nil, nil
	}
	if epoch == s.prior.Epoch {
		return s.prior, nil
	}
	if !s.deltaBroken && epoch == s.deltaTo {
		return s.prior, append([]kb.Triple(nil), s.delta...)
	}
	return nil, nil
}

// storePrior records a completed run's reusable state and resets the
// delta trail to start from it.
func (s *Session) storePrior(p *framework.Prior) {
	s.pmu.Lock()
	s.prior = p
	s.delta = nil
	s.deltaTo = p.Epoch
	s.deltaBroken = false
	s.dirtySrcs = nil
	s.pmu.Unlock()
}

// Discover runs the full pipeline over the current corpus against the
// current KB.
func (s *Session) Discover() *Result {
	res, _ := s.DiscoverContext(context.Background())
	return res
}

// DiscoverContext is Discover with cancellation: request deadlines and
// client disconnects propagate into the pipeline, which returns the
// slices finalized so far together with the context's error. Multiple
// discoveries may run concurrently (they hold the session's read lock);
// AddFacts and Absorb wait for in-flight discoveries to finish.
//
// Discoveries are incremental: each completed run keeps its per-source
// fact tables and detection results, and the next run reuses them for
// every source whose facts are unchanged and whose newness the KB
// growth since then cannot have touched — doing detection work
// proportional to the delta, with a result identical to a from-scratch
// run. Result.SourcesReused reports how much was skipped.
func (s *Session) DiscoverContext(ctx context.Context) (*Result, error) {
	reg := s.metrics()
	defer reg.Timer("session/discover").Start()()
	s.mu.RLock()
	fp := s.fingerprintLocked()
	prior, delta := s.usablePrior()
	res, next, err := discover(ctx, s.corpus, s.kb, &s.opts, prior, delta)
	res.Fingerprint = fp
	if err == nil && next != nil {
		s.storePrior(next)
	}
	s.mu.RUnlock()
	reg.Counter("session/discoveries").Inc()
	reg.Gauge("session/last_slices").Set(float64(len(res.Slices)))
	reg.Counter("session/sources_reused").Add(int64(res.SourcesReused))
	return res, err
}

// Absorb simulates extracting a recommended slice: every corpus fact of
// the slice's entities located at or under the slice's source is added
// to the KB. It returns the number of facts that were new. Subsequent
// Discover calls no longer count these facts as gain.
//
// Absorb always advances the KB epoch, but it records the triples it
// actually added, so the next Discover still reuses the detection
// results of every source whose fact table contains none of them —
// only sources carrying the absorbed facts fall back to re-annotation
// and re-detection. A KB mutated outside Absorb (through KB()) breaks
// that trail and the next Discover rebuilds from scratch.
func (s *Session) Absorb(sl Slice) int {
	reg := s.metrics()
	defer reg.Timer("session/absorb").Start()()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pmu.Lock()
	if s.prior != nil && s.kb.store.Epoch() != s.deltaTo {
		// The KB moved since the delta trail last caught up: an
		// untracked mutation slipped in, so completeness is gone.
		s.deltaBroken = true
	}
	s.pmu.Unlock()
	s.reindex()
	members := make(map[string]bool, len(sl.Entities))
	for _, e := range sl.Entities {
		members[e] = true
	}
	added := 0
	var addedTriples []kb.Triple
	space := s.kb.store.Space()
	for e := range members {
		for _, sf := range s.bySubject[e] {
			if sf.src != sl.Source && !strings.HasPrefix(sf.src, sl.Source+"/") {
				continue
			}
			t := space.Intern(sf.f.Subject, sf.f.Predicate, sf.f.Object)
			if s.kb.store.Add(t) {
				added++
				addedTriples = append(addedTriples, t)
			}
		}
	}
	s.pmu.Lock()
	if s.prior != nil && !s.deltaBroken {
		s.delta = append(s.delta, addedTriples...)
	}
	s.deltaTo = s.kb.store.Epoch()
	if s.dirtySrcs == nil {
		s.dirtySrcs = make(map[string]struct{})
	}
	s.dirtySrcs[sl.Source] = struct{}{}
	s.pmu.Unlock()
	reg.Counter("session/absorbs").Inc()
	reg.Counter("session/facts_absorbed").Add(int64(added))
	reg.Gauge("session/kb_facts").Set(float64(s.kb.Size()))
	return added
}

// Progress reports the augmentation state: KB size and how much of the
// corpus the KB now covers (deduplicated fact-level coverage).
func (s *Session) Progress() (kbFacts int, corpusCovered float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reindex()
	type key struct{ s, p, o string }
	seen := make(map[key]bool)
	covered, total := 0, 0
	subjects := make([]string, 0, len(s.bySubject))
	for subj := range s.bySubject {
		subjects = append(subjects, subj)
	}
	sort.Strings(subjects)
	for _, subj := range subjects {
		for _, sf := range s.bySubject[subj] {
			k := key{sf.f.Subject, sf.f.Predicate, sf.f.Object}
			if seen[k] {
				continue
			}
			seen[k] = true
			total++
			if s.kb.Contains(sf.f.Subject, sf.f.Predicate, sf.f.Object) {
				covered++
			}
		}
	}
	if total > 0 {
		corpusCovered = float64(covered) / float64(total)
	}
	reg := s.metrics()
	reg.Gauge("session/kb_facts").Set(float64(s.kb.Size()))
	reg.Gauge("session/corpus_coverage").Set(corpusCovered)
	return s.kb.Size(), corpusCovered
}

func (s *Session) reindex() {
	if !s.dirty && s.bySubject != nil {
		return
	}
	s.bySubject = make(map[string][]sessionFact)
	for _, e := range s.corpus.c.Facts {
		subj, pred, obj := s.corpus.c.Space.StringTriple(e.Triple)
		f := Fact{
			Subject: subj, Predicate: pred, Object: obj,
			Confidence: float64(e.Conf),
			URL:        s.corpus.c.URLs.String(e.URL),
		}
		s.bySubject[subj] = append(s.bySubject[subj], sessionFact{
			f:   f,
			src: source.Normalize(f.URL),
		})
	}
	s.dirty = false
}
