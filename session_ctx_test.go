package midas_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"midas"
	"midas/internal/core"
	"midas/internal/fact"
	"midas/internal/hierarchy"
	"midas/internal/slice"
)

// countingDetector wraps the default detection phase (MIDASalg via
// core.DiscoverSeeded, which is bit-identical to the framework's
// built-in wiring for any worker count) and calls hook before each
// invocation — the seam the mid-run cancellation test uses.
func countingDetector(hook func(n int64)) midas.Detector {
	var n atomic.Int64
	return func(table *fact.Table, seeds []hierarchy.Seed) []*slice.Slice {
		hook(n.Add(1))
		return core.DiscoverSeeded(table, seeds, core.Options{Cost: slice.DefaultCostModel()}).Slices
	}
}

// TestDiscoverContextPreCanceled: a context canceled before the call
// yields the partial contract at its degenerate point — an empty but
// non-nil result carrying the fingerprint, the context's error, and a
// session left fully usable (no prior is stored from the failed run,
// so the next discovery runs from scratch and matches a fresh session).
func TestDiscoverContextPreCanceled(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)
	fp := sess.Fingerprint()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.DiscoverContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("result must be non-nil on cancellation")
	}
	if len(res.Slices) != 0 || res.Rounds != 0 {
		t.Errorf("pre-canceled run produced %d slices over %d rounds, want 0/0",
			len(res.Slices), res.Rounds)
	}
	if res.Fingerprint != fp {
		t.Errorf("partial result fingerprint = %x, want %x", res.Fingerprint, fp)
	}

	full, err := sess.DiscoverContext(context.Background())
	if err != nil {
		t.Fatalf("discovery after cancellation: %v", err)
	}
	if full.SourcesReused != 0 {
		t.Errorf("canceled run must not store a prior, but %d sources were reused", full.SourcesReused)
	}
	fresh := midas.NewSession(nil, nil)
	fresh.AddFacts(sessionCorpusFacts()...)
	want := fresh.Discover()
	if !reflect.DeepEqual(full.Slices, want.Slices) {
		t.Error("post-cancellation discovery differs from a fresh session's")
	}
}

// TestDiscoverContextExpiredDeadline: a deadline already in the past
// behaves like pre-cancellation but reports DeadlineExceeded.
func TestDiscoverContextExpiredDeadline(t *testing.T) {
	sess := midas.NewSession(nil, nil)
	sess.AddFacts(sessionCorpusFacts()...)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := sess.DiscoverContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || len(res.Slices) != 0 {
		t.Fatalf("expired deadline: result = %+v, want empty non-nil", res)
	}
	if _, err := sess.DiscoverContext(context.Background()); err != nil {
		t.Fatalf("discovery after expired deadline: %v", err)
	}
}

// TestDiscoverContextMidRunCancel: cancellation raised while detection
// is underway (via the Options.Detect seam) ends the run at the next
// hierarchy-level boundary: fewer rounds than a full run, the slices
// finalized so far, and the context's error. The aborted run must not
// pollute the session's incremental state.
func TestDiscoverContextMidRunCancel(t *testing.T) {
	fresh := midas.NewSession(nil, nil)
	fresh.AddFacts(sessionCorpusFacts()...)
	want := fresh.Discover()
	if want.Rounds < 2 {
		t.Fatalf("corpus too shallow for a mid-run cancel test: %d rounds", want.Rounds)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := midas.NewSession(nil, &midas.Options{
		Detect: countingDetector(func(n int64) {
			if n == 1 {
				cancel()
			}
		}),
	})
	sess.AddFacts(sessionCorpusFacts()...)

	res, err := sess.DiscoverContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Rounds >= want.Rounds {
		t.Errorf("canceled run completed %d rounds, full run needs %d", res.Rounds, want.Rounds)
	}

	full, err := sess.DiscoverContext(context.Background())
	if err != nil {
		t.Fatalf("discovery after mid-run cancel: %v", err)
	}
	if full.SourcesReused != 0 {
		t.Errorf("aborted run must not store a prior, but %d sources were reused", full.SourcesReused)
	}
	if !reflect.DeepEqual(full.Slices, want.Slices) {
		t.Error("recovery discovery differs from the default pipeline's result")
	}
}
